// Tour of the distributed machinery: one precomputation distributed onto
// 2..10 simulated machines, reporting the paper's four metrics per cluster
// size; the offline phase rebuilt as a true multi-round distributed program;
// and a comparison against the Pregel+-style BSP baseline.

#include <cstdio>

#include "dppr/baseline/bsp_engine.h"
#include "dppr/common/rng.h"
#include "dppr/core/dist_precompute.h"
#include "dppr/core/hgpa.h"
#include "dppr/graph/datasets.h"

int main() {
  using namespace dppr;
  Graph g = WebLike(0.3);
  std::printf("web-like graph: %zu nodes, %zu edges\n\n", g.num_nodes(),
              g.num_edges());

  auto pre = HgpaPrecomputation::RunHgpa(g, HgpaOptions{});
  Rng rng(5);
  std::vector<NodeId> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(static_cast<NodeId>(rng.Uniform(g.num_nodes())));
  }

  std::printf("%-9s %12s %12s %12s %12s\n", "machines", "runtime(ms)",
              "space(MB)", "offline(s)", "comm(KB)");
  for (size_t machines = 2; machines <= 10; machines += 2) {
    HgpaIndex index = HgpaIndex::Distribute(pre, machines);
    HgpaQueryEngine engine(index);
    double runtime_ms = 0;
    double comm_kb = 0;
    for (NodeId q : queries) {
      QueryMetrics metrics;
      engine.Query(q, &metrics);
      runtime_ms += metrics.simulated_seconds * 1e3;
      comm_kb += metrics.comm.kilobytes();
    }
    std::printf("%-9zu %12.2f %12.2f %12.2f %12.1f\n", machines,
                runtime_ms / queries.size(),
                static_cast<double>(index.MaxMachineBytes()) / (1 << 20),
                index.offline_ledger().MaxSeconds(), comm_kb / queries.size());
  }

  // Offline phase, actually distributed: the same hierarchy precomputed by
  // SimCluster supersteps (leaf PPVs, then per level skeleton columns and hub
  // partials), every produced vector shipped as serialized bytes into its
  // machine's own PpvStore. MultiRoundStats is the paper's offline report.
  std::printf("\ndistributed offline phase (multi-round supersteps):\n");
  std::printf("%-9s %7s %12s %12s %12s %12s\n", "machines", "rounds",
              "simulated(s)", "machine(s)", "shipped(KB)", "store(MB)");
  for (size_t machines = 2; machines <= 10; machines += 4) {
    DistPrecomputeOptions dist;
    dist.num_machines = machines;
    DistributedPrecompute::Result offline =
        DistributedPrecompute::RunHgpa(g, HgpaOptions{}, dist);
    std::printf("%-9zu %7zu %12.2f %12.2f %12.1f %12.2f\n", machines,
                offline.offline.rounds, offline.offline.simulated_seconds,
                offline.ledger.MaxSeconds(), offline.offline.comm.kilobytes(),
                static_cast<double>(offline.MaxMachineBytes()) / (1 << 20));
    if (machines == 10) {
      // The machine-owned stores serve queries directly — no centralized
      // precomputation object exists on this path.
      HgpaQueryEngine owned_engine(HgpaIndex::FromDistributed(std::move(offline)));
      QueryMetrics metrics;
      owned_engine.Query(queries[0], &metrics);
      std::printf("query from machine-owned stores: %.2f ms simulated, "
                  "%llu msgs\n", metrics.simulated_seconds * 1e3,
                  static_cast<unsigned long long>(metrics.comm.messages));
    }
  }

  // The locality shuffle, level by level: each machine computes the hub
  // vectors of the subgraphs it is home to and ships every record whose
  // Eq. 7 owner lives elsewhere through one exchange round per level. The
  // hit rate is the fraction of records that were already home — the
  // traffic the shuffle never has to pay.
  {
    DistPrecomputeOptions dist;
    dist.num_machines = 6;
    dist.locality = OfflinePlacement::kLocality;
    DistributedPrecompute::Result offline =
        DistributedPrecompute::RunHgpa(g, HgpaOptions{}, dist);
    std::printf("\nlocality shuffle rounds, 6 machines:\n");
    std::printf("%-7s %9s %12s %12s %12s %10s\n", "level", "induces",
                "records", "local", "shuffled(KB)", "home hit");
    for (const auto& level : offline.levels) {
      size_t records = level.local_records + level.shuffled_records;
      std::printf("%-7u %9zu %12zu %12zu %12.1f %9.0f%%\n", level.level,
                  level.induces, records, level.local_records,
                  static_cast<double>(level.shuffled_bytes) / 1024.0,
                  records == 0
                      ? 100.0
                      : 100.0 * static_cast<double>(level.local_records) /
                            static_cast<double>(records));
    }

    DistPrecomputeOptions owner_dist = dist;
    owner_dist.locality = OfflinePlacement::kOwner;
    DistributedPrecompute::Result owner =
        DistributedPrecompute::RunHgpa(g, HgpaOptions{}, owner_dist);
    std::printf("induces: %zu home-only (locality) vs %zu with %zu remote "
                "(owner) — every remote induce is a subgraph transfer a real "
                "cluster would pay\n",
                offline.induces, owner.induces, owner.remote_induces);
  }

  // Same index, three interconnects: the 100 Mbit switch the paper measured
  // on, a gigabit LAN, and a datacenter fabric. Compute is unchanged — only
  // the modeled transfer of the coordinator-bound payloads shifts.
  struct Preset {
    const char* name;
    NetworkModel net;
  };
  const Preset presets[] = {
      {"100 Mbit LAN (paper)", NetworkModel::Lan100Mbit()},
      {"1 Gbit LAN", NetworkModel::Lan1Gbit()},
      {"datacenter", NetworkModel::Datacenter()},
  };
  HgpaIndex sweep_index = HgpaIndex::Distribute(pre, 6);
  std::printf("\nnetwork sweep, 6 machines:\n");
  std::printf("%-22s %14s %14s %12s\n", "link", "simulated(ms)", "compute(ms)",
              "net share");
  for (const Preset& preset : presets) {
    HgpaQueryEngine engine(sweep_index, preset.net);
    double simulated_ms = 0;
    double compute_ms = 0;
    for (NodeId q : queries) {
      QueryMetrics metrics;
      engine.Query(q, &metrics);
      simulated_ms += metrics.simulated_seconds * 1e3;
      compute_ms += metrics.ComputeSeconds() * 1e3;
    }
    simulated_ms /= queries.size();
    compute_ms /= queries.size();
    std::printf("%-22s %14.2f %14.2f %11.0f%%\n", preset.name, simulated_ms,
                compute_ms, 100.0 * (simulated_ms - compute_ms) / simulated_ms);
  }

  // The BSP baseline pays a message wave per superstep instead.
  BspOptions bsp;
  bsp.num_machines = 6;
  BspPpvResult pregel = BspPowerIterationPpv(g, queries[0], PprOptions{}, bsp);
  std::printf("\npregel+-style power iteration, 6 machines: %zu supersteps, "
              "%.0f KB traffic, %.0f ms simulated\n",
              pregel.supersteps, pregel.network_traffic.kilobytes(),
              pregel.simulated_seconds * 1e3);
  std::printf("(HGPA sends one message per machine per query — the whole point)\n");
  return 0;
}
