// Local community detection via PPV sweep cuts ([3, 21] in the paper): rank
// nodes by degree-normalized personalized score from a seed, then take the
// prefix with the best conductance. On a planted-partition graph the sweep
// should recover the seed's community almost exactly.

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "dppr/core/hgpa.h"
#include "dppr/graph/generators.h"

namespace {

using namespace dppr;

// Conductance of a node set: cut edges / min(volume inside, volume outside).
double Conductance(const Graph& g, const std::unordered_set<NodeId>& set) {
  size_t cut = 0;
  size_t volume = 0;
  size_t total_volume = g.num_edges() * 2;
  for (NodeId u : set) {
    volume += g.out_degree(u) + g.in_degree(u);
    for (NodeId v : g.OutNeighbors(u)) cut += !set.count(v);
    for (NodeId v : g.InNeighbors(u)) cut += !set.count(v);
  }
  size_t denom = std::min(volume, total_volume - volume);
  if (denom == 0) return 1.0;
  return static_cast<double>(cut) / static_cast<double>(denom);
}

}  // namespace

int main() {
  constexpr size_t kNodes = 3000;
  constexpr size_t kCommunities = 15;
  Graph g = CommunityDigraph(kNodes, kCommunities, 5.0, 0.93, /*seed=*/3);
  auto community_of = [&](NodeId u) {
    return (static_cast<uint64_t>(u) * kCommunities) / kNodes;
  };

  auto pre = HgpaPrecomputation::RunHgpa(g, HgpaOptions{});
  HgpaQueryEngine engine(HgpaIndex::Distribute(pre, 4));

  NodeId seed = 1234;
  std::vector<double> ppv = engine.QueryDense(seed);

  // Sweep: order nodes by ppv/degree, track the best-conductance prefix.
  std::vector<NodeId> order;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (ppv[u] > 0) order.push_back(u);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    double sa = ppv[a] / std::max(1u, g.out_degree(a));
    double sb = ppv[b] / std::max(1u, g.out_degree(b));
    if (sa != sb) return sa > sb;
    return a < b;
  });

  std::unordered_set<NodeId> sweep;
  std::unordered_set<NodeId> best_set;
  double best_conductance = 1.0;
  for (size_t i = 0; i < std::min<size_t>(order.size(), 600); ++i) {
    sweep.insert(order[i]);
    if (sweep.size() < 8) continue;
    double phi = Conductance(g, sweep);
    if (phi < best_conductance) {
      best_conductance = phi;
      best_set = sweep;
    }
  }

  size_t same_community = 0;
  for (NodeId u : best_set) same_community += community_of(u) == community_of(seed);
  size_t true_size = kNodes / kCommunities;

  std::printf("seed node %u lives in community %llu (%zu members)\n", seed,
              static_cast<unsigned long long>(community_of(seed)), true_size);
  std::printf("sweep cut found %zu nodes with conductance %.4f\n",
              best_set.size(), best_conductance);
  std::printf("  precision: %5.1f%%   recall: %5.1f%%\n",
              100.0 * static_cast<double>(same_community) /
                  static_cast<double>(best_set.size()),
              100.0 * static_cast<double>(same_community) /
                  static_cast<double>(true_size));
  return best_conductance < 0.5 ? 0 : 1;
}
