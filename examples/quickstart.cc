// Quickstart: build a graph, index it with HGPA, and answer exact
// Personalized PageRank queries with one coordinator round.
//
//   ./quickstart [dataset] [scale]     (default: web 0.2)

#include <cstdio>
#include <string>

#include "dppr/core/hgpa.h"
#include "dppr/graph/datasets.h"
#include "dppr/graph/graph_stats.h"
#include "dppr/ppr/metrics.h"

int main(int argc, char** argv) {
  using namespace dppr;
  std::string dataset = argc > 1 ? argv[1] : "web";
  double scale = argc > 2 ? std::stod(argv[2]) : 0.2;

  // 1. A graph. Any directed graph works; here a synthetic stand-in for the
  //    paper's Google web graph.
  Graph graph = DatasetByName(dataset, scale);
  std::printf("dataset %s: %s\n", dataset.c_str(),
              ComputeGraphStats(graph).ToString().c_str());

  // 2. Offline: hierarchical partitioning + partial/skeleton precomputation.
  HgpaOptions options;  // α = 0.15, ε = 1e-4, 2-way hierarchy (paper defaults)
  auto precomputation = HgpaPrecomputation::RunHgpa(graph, options);
  const Hierarchy& hierarchy = precomputation->hierarchy();
  std::printf("hierarchy: %u levels, %zu subgraphs, %zu hub nodes, "
              "precompute %.2fs, %.1f MB of vectors\n",
              hierarchy.num_levels(), hierarchy.num_subgraphs(),
              hierarchy.TotalHubCount(), precomputation->total_seconds(),
              static_cast<double>(precomputation->TotalBytes()) / (1 << 20));

  // 3. Distribute onto 6 simulated machines (Eq. 7 hub partitioning).
  HgpaIndex index = HgpaIndex::Distribute(precomputation, 6);
  HgpaQueryEngine engine(index);

  // 4. Online: one exact PPV per query, one message per machine. Query a
  //    node with a healthy out-degree so the vector is interesting.
  NodeId query = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (graph.out_degree(u) > graph.out_degree(query) && !graph.HasEdge(u, u)) {
      query = u;
    }
  }
  QueryMetrics metrics;
  std::vector<double> ppv = engine.QueryDense(query, &metrics);
  std::printf("\nquery node %u: runtime %.2f ms (simulated, incl. network), "
              "%.1f KB over the wire, %zu messages\n",
              query, metrics.simulated_seconds * 1e3, metrics.comm.kilobytes(),
              metrics.comm.messages);

  std::printf("top-10 nodes by personalized score:\n");
  for (NodeId v : TopK(ppv, 10)) {
    std::printf("  node %-8u score %.6f\n", v, ppv[v]);
  }
  return 0;
}
