// "People you may know" on an event co-attendance graph (the paper's Meetup
// dataset, application [22, 27]): recommend the non-neighbors with the
// highest personalized score, and explain each recommendation with the
// number of shared contacts.

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "dppr/core/hgpa.h"
#include "dppr/graph/datasets.h"
#include "dppr/ppr/metrics.h"

int main() {
  using namespace dppr;
  Graph g = MeetupLike(1, /*scale=*/0.4);
  std::printf("meetup-like graph: %zu users, %zu follow edges\n", g.num_nodes(),
              g.num_edges());

  auto pre = HgpaPrecomputation::RunHgpa(g, HgpaOptions{});
  HgpaQueryEngine engine(HgpaIndex::Distribute(pre, 6));

  for (NodeId user : {NodeId{42}, NodeId{777}}) {
    std::vector<double> ppv = engine.QueryDense(user);
    std::unordered_set<NodeId> friends(g.OutNeighbors(user).begin(),
                                       g.OutNeighbors(user).end());
    friends.insert(user);

    std::printf("\nrecommendations for user %u (%u contacts):\n", user,
                g.out_degree(user));
    size_t shown = 0;
    for (NodeId candidate : TopK(ppv, 50)) {
      if (friends.count(candidate)) continue;
      size_t mutual = 0;
      for (NodeId w : g.OutNeighbors(candidate)) mutual += friends.count(w);
      std::printf("  user %-7u score %.6f  (%zu mutual contacts)\n", candidate,
                  ppv[candidate], mutual);
      if (++shown == 5) break;
    }
    if (shown == 0) std::printf("  (user's whole component is already linked)\n");
  }
  return 0;
}
