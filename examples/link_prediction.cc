// Link prediction with exact PPVs (one of the PPR applications motivating
// the paper, [4]): hide a fraction of edges, rank candidate targets by the
// personalized score of the source, and check how many hidden edges land in
// the top of the ranking versus a popularity baseline.

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "dppr/common/rng.h"
#include "dppr/core/hgpa.h"
#include "dppr/graph/generators.h"
#include "dppr/ppr/metrics.h"
#include "dppr/ppr/pagerank.h"

namespace {

using namespace dppr;

struct HeldOutEdge {
  NodeId source;
  NodeId target;
};

}  // namespace

int main() {
  // A community-structured social graph: links mostly stay inside
  // communities, which is what makes PPR a strong predictor.
  Graph full = CommunityDigraph(4000, 25, 6.0, 0.92, /*seed=*/7);

  // Hold out ~5% of the edges (keeping at least one out-edge per node).
  Rng rng(13);
  GraphBuilder builder(full.num_nodes());
  std::vector<HeldOutEdge> held_out;
  for (NodeId u = 0; u < full.num_nodes(); ++u) {
    auto nbrs = full.OutNeighbors(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs.size() > 1 && i + 1 < nbrs.size() && rng.NextBool(0.05)) {
        held_out.push_back({u, nbrs[i]});
      } else {
        builder.AddEdge(u, nbrs[i]);
      }
    }
  }
  GraphBuildOptions gopt;
  gopt.dangling = DanglingPolicy::kSelfLoop;
  Graph train = builder.Build(gopt);
  std::printf("train graph: %zu nodes, %zu edges; %zu held-out edges\n",
              train.num_nodes(), train.num_edges(), held_out.size());

  // Index the training graph.
  auto pre = HgpaPrecomputation::RunHgpa(train, HgpaOptions{});
  HgpaQueryEngine engine(HgpaIndex::Distribute(pre, 4));

  // Popularity baseline ranks every candidate by global PageRank.
  std::vector<double> pagerank = GlobalPageRank(train);

  constexpr size_t kTop = 50;
  size_t ppr_hits = 0;
  size_t popularity_hits = 0;
  size_t evaluated = 0;
  for (size_t i = 0; i < held_out.size() && evaluated < 150; i += 7, ++evaluated) {
    NodeId source = held_out[i].source;
    NodeId target = held_out[i].target;
    std::unordered_set<NodeId> known(train.OutNeighbors(source).begin(),
                                     train.OutNeighbors(source).end());
    known.insert(source);

    auto rank_with = [&](const std::vector<double>& scores) {
      std::vector<NodeId> order = TopK(scores, kTop + known.size());
      size_t shown = 0;
      for (NodeId v : order) {
        if (known.count(v)) continue;  // already linked
        if (v == target) return true;
        if (++shown >= kTop) break;
      }
      return false;
    };

    ppr_hits += rank_with(engine.QueryDense(source));
    popularity_hits += rank_with(pagerank);
  }

  std::printf("\nhit@%zu over %zu held-out edges:\n", kTop, evaluated);
  std::printf("  personalized pagerank : %5.1f%%\n",
              100.0 * static_cast<double>(ppr_hits) / static_cast<double>(evaluated));
  std::printf("  global popularity     : %5.1f%%\n",
              100.0 * static_cast<double>(popularity_hits) /
                  static_cast<double>(evaluated));
  std::printf("\nPPR should clearly beat popularity on a community graph.\n");
  return ppr_hits > popularity_hits ? 0 : 1;
}
